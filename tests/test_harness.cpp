// Harness-layer tests: registry behaviour, the RunConfig -> legacy-config
// mapping of every workload adapter, and the golden parity table.
//
// The golden table pins the exact metrics the four pre-refactor example
// drivers printed for fixed small configs, on both interconnects.  The
// simulation is deterministic, so the harness port must reproduce them
// byte-for-byte; any drift means the refactor changed an application's
// behaviour, not just its packaging.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/run_config.hpp"
#include "harness/workload.hpp"
#include "harness/workloads.hpp"
#include "rt/vm.hpp"

namespace {

using namespace nscc;
using harness::Registry;
using harness::RunConfig;
using harness::RunStats;

TEST(Registry, GlobalHasTheFourBuiltinWorkloads) {
  auto& reg = Registry::global();
  EXPECT_EQ(reg.size(), 4u);
  for (const char* name :
       {"ga.island", "bayes.sampling", "solver.jacobi", "nn.train"}) {
    auto* w = reg.find(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->name(), name);
  }
  EXPECT_EQ(reg.find("no.such.workload"), nullptr);
}

TEST(Registry, RejectsDuplicateNames) {
  Registry reg;
  harness::register_builtin_workloads(reg);
  ASSERT_EQ(reg.size(), 4u);
  EXPECT_FALSE(reg.add(std::make_unique<harness::GaIslandWorkload>()));
  EXPECT_EQ(reg.size(), 4u);
}

TEST(Registry, FindOnEmptyRegistryIsNull) {
  Registry reg;
  EXPECT_EQ(reg.find("ga.island"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
}

// ---- RunConfig -> legacy-config parity -------------------------------------

RunConfig sample_run() {
  RunConfig run;
  run.mode = dsm::Mode::kPartialAsync;
  run.age = 7;
  run.seed = 42;
  run.propagation.coalesce = true;
  run.propagation.read_timeout = 123 * sim::kMillisecond;
  run.loader_offered_bps = 2e6;
  return run;
}

TEST(Parity, GaIslandBuildMapsEveryField) {
  harness::GaIslandWorkload w;
  w.function_id = 3;
  w.demes = 5;
  w.generations = 77;
  const ga::IslandConfig cfg = w.build(sample_run());
  EXPECT_EQ(cfg.mode, dsm::Mode::kPartialAsync);
  EXPECT_EQ(cfg.age, 7);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_TRUE(cfg.propagation.coalesce);
  EXPECT_EQ(cfg.propagation.read_timeout, 123 * sim::kMillisecond);
  EXPECT_EQ(cfg.function_id, 3);
  EXPECT_EQ(cfg.ndemes, 5);
  EXPECT_EQ(cfg.generations, 77);
}

TEST(Parity, BayesBuildMapsEveryField) {
  harness::BayesSamplingWorkload w;
  w.parts = 3;
  w.iterations = 999;
  const bayes::ParallelInferenceConfig cfg = w.build(sample_run());
  EXPECT_EQ(cfg.mode, dsm::Mode::kPartialAsync);
  EXPECT_EQ(cfg.age, 7);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.propagation.read_timeout, 123 * sim::kMillisecond);
  EXPECT_EQ(cfg.parts, 3);
  EXPECT_EQ(cfg.iterations, 999u);
}

TEST(Parity, JacobiBuildMapsEveryField) {
  harness::JacobiWorkload w;
  w.grid = 9;
  w.processors = 3;
  w.tolerance = 1e-6;
  const solver::ParallelJacobiConfig cfg = w.build(sample_run());
  EXPECT_EQ(cfg.mode, dsm::Mode::kPartialAsync);
  EXPECT_EQ(cfg.age, 7);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_TRUE(cfg.propagation.coalesce);
  EXPECT_EQ(cfg.propagation.read_timeout, 123 * sim::kMillisecond);
  EXPECT_EQ(cfg.processors, 3);
  EXPECT_DOUBLE_EQ(cfg.tolerance, 1e-6);
  EXPECT_EQ(cfg.check_interval, 25);  // The legacy jacobi_solver default.
}

TEST(Parity, NnBuildMapsEveryField) {
  harness::NnTrainWorkload w;
  w.workers = 6;
  w.steps = 123;
  const nn::TrainConfig cfg = w.build(sample_run());
  EXPECT_EQ(cfg.mode, dsm::Mode::kPartialAsync);
  EXPECT_EQ(cfg.age, 7);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.propagation.read_timeout, 123 * sim::kMillisecond);
  EXPECT_EQ(cfg.workers, 6);
  EXPECT_EQ(cfg.steps, 123);
}

// ---- Golden metrics --------------------------------------------------------

struct GoldenRow {
  const char* workload;
  const char* network;  // "ethernet" | "sp2"
  const char* variant;  // "sync" | "async" | "partial"
  sim::Time completion_time;
  std::uint64_t messages_sent;
  std::uint64_t global_read_blocks;
  sim::Time global_read_block_time;
  double quality;
  bool deadlocked;
};

// Captured from the pre-refactor per-app drivers (deterministic simulation;
// exact values).  Configs: ga.island f1, 4 demes, 40 generations, seed 7;
// bayes.sampling Figure 1, 2 parts, 1500 iterations, seed 11;
// solver.jacobi 12x12 Poisson, P=4, tol 1e-7, check every 25, seed 5;
// nn.train two-spirals(60), 4 workers, 80 steps, seed 7, partial age 2.
// All partial ages 10 unless noted; coalesce iff partial (ga and solver
// honour it; bayes and nn never coalesce).
const GoldenRow kGolden[] = {
    {"ga.island", "ethernet", "sync", 1380090335, 732, 0, 0,
     7.514669923145609e-05, false},
    {"ga.island", "ethernet", "async", 1144798081, 492, 0, 0,
     7.514669923145609e-05, false},
    {"ga.island", "ethernet", "partial", 1136349597, 492, 6, 11854142,
     7.514669923145609e-05, false},
    {"ga.island", "sp2", "sync", 1359007439, 732, 0, 0,
     7.514669923145609e-05, false},
    {"ga.island", "sp2", "async", 1140647152, 492, 0, 0,
     7.514669923145609e-05, false},
    {"ga.island", "sp2", "partial", 1135998155, 492, 5, 10598342,
     7.514669923145609e-05, false},
    {"bayes.sampling", "ethernet", "sync", 6252661962, 9002, 3000, 2273817200,
     0.79928315412186379, false},
    {"bayes.sampling", "ethernet", "async", 3390735243, 6201, 0, 0,
     0.79928315412186379, false},
    {"bayes.sampling", "ethernet", "partial", 1255840889, 1381, 43, 393799675,
     0.79928315412186379, false},
    {"bayes.sampling", "sp2", "sync", 5987210412, 9002, 3000, 1933316600,
     0.79928315412186379, false},
    {"bayes.sampling", "sp2", "async", 3382177871, 6194, 0, 0,
     0.79928315412186379, false},
    {"bayes.sampling", "sp2", "partial", 1251309978, 1379, 35, 383996398,
     0.79928315412186379, false},
    {"solver.jacobi", "ethernet", "sync", 2369206750, 4914, 0, 0,
     6.3698217367402776e-08, false},
    {"solver.jacobi", "ethernet", "async", 968387409, 2382, 0, 0,
     6.8683521758927668e-08, false},
    {"solver.jacobi", "ethernet", "partial", 940967034, 2203, 265, 342854793,
     5.4146196415416625e-08, false},
    {"solver.jacobi", "sp2", "sync", 2013126008, 4914, 0, 0,
     6.3698217367402776e-08, false},
    {"solver.jacobi", "sp2", "async", 892354457, 2214, 0, 0,
     7.5415694134051137e-08, false},
    {"solver.jacobi", "sp2", "partial", 900703286, 2226, 44, 49778757,
     5.3192594995365994e-08, false},
    {"nn.train", "ethernet", "sync", 1567652859, 644, 320, 5714292254,
     0.23438190940819084, false},
    {"nn.train", "ethernet", "async", 1434434619, 644, 0, 0,
     0.33470809886347064, false},
    {"nn.train", "ethernet", "partial", 1474180957, 644, 312, 5266919106,
     0.23456452125305255, false},
    {"nn.train", "sp2", "sync", 423170080, 644, 320, 1175236150,
     0.23438190940819084, false},
    {"nn.train", "sp2", "async", 334082350, 644, 0, 0,
     0.29409001511218097, false},
    {"nn.train", "sp2", "partial", 335014844, 644, 311, 797926182,
     0.23456705591026542, false},
};

/// Build the registry with the small golden problem sizes and seeds.
struct GoldenSetup {
  Registry registry;
  std::uint64_t seed(const std::string& workload) const {
    if (workload == "bayes.sampling") return 11;
    if (workload == "solver.jacobi") return 5;
    return 7;
  }
  long partial_age(const std::string& workload) const {
    return workload == "nn.train" ? 2 : 10;
  }
  GoldenSetup() {
    auto ga = std::make_unique<harness::GaIslandWorkload>();
    ga->function_id = 1;
    ga->demes = 4;
    ga->generations = 40;
    registry.add(std::move(ga));
    auto bayes = std::make_unique<harness::BayesSamplingWorkload>();
    bayes->parts = 2;
    bayes->iterations = 1500;
    registry.add(std::move(bayes));
    auto jacobi = std::make_unique<harness::JacobiWorkload>();
    jacobi->grid = 12;
    jacobi->processors = 4;
    jacobi->tolerance = 1e-7;
    registry.add(std::move(jacobi));
    auto nn = std::make_unique<harness::NnTrainWorkload>();
    nn->workers = 4;
    nn->steps = 80;
    registry.add(std::move(nn));
  }
};

TEST(Golden, HarnessReproducesPreRefactorMetricsExactly) {
  GoldenSetup setup;
  for (const GoldenRow& row : kGolden) {
    SCOPED_TRACE(std::string(row.workload) + " / " + row.network + " / " +
                 row.variant);
    auto* workload = setup.registry.find(row.workload);
    ASSERT_NE(workload, nullptr);

    // Mirror harness::drive()'s variant wiring exactly.
    const auto variant = harness::make_variant(
        row.variant, setup.partial_age(row.workload));
    RunConfig run;
    run.seed = setup.seed(row.workload);
    run.mode = variant.mode;
    run.age = variant.age;
    run.propagation.coalesce = variant.mode == dsm::Mode::kPartialAsync;

    rt::MachineConfig machine;
    machine.network = std::string(row.network) == "sp2"
                          ? rt::Network::kSp2Switch
                          : rt::Network::kEthernet;

    const RunStats stats = workload->run(run, machine);
    EXPECT_EQ(stats.completion_time, row.completion_time);
    EXPECT_EQ(stats.messages_sent, row.messages_sent);
    EXPECT_EQ(stats.global_read_blocks, row.global_read_blocks);
    EXPECT_EQ(stats.global_read_block_time, row.global_read_block_time);
    EXPECT_EQ(stats.quality, row.quality);  // Exact: deterministic sim.
    EXPECT_EQ(stats.deadlocked, row.deadlocked);
  }
}

// ---- Variant parsing -------------------------------------------------------

TEST(Variants, ParseAndLabel) {
  const auto variants = harness::parse_variants("sync,partial", 10);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(variants[0].mode, dsm::Mode::kSynchronous);
  EXPECT_EQ(variants[0].label(), "synchronous");
  EXPECT_EQ(variants[1].mode, dsm::Mode::kPartialAsync);
  EXPECT_EQ(variants[1].age, 10);
  EXPECT_EQ(variants[1].label(), "Global_Read(10)");
}

}  // namespace
