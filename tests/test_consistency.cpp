// Tests for the pluggable consistency-model layer: the registry, each
// built-in model's admission/propagation/ordering semantics in isolation,
// and the end-to-end behaviours (release-acquire parking, regional fences,
// eventual non-blocking) on a live SharedSpace.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dsm/consistency.hpp"
#include "dsm/shared_space.hpp"
#include "rt/packet.hpp"
#include "rt/vm.hpp"
#include "sim/time.hpp"

namespace {

using nscc::dsm::ConsistencyModel;
using nscc::dsm::ConsistencyRegistry;
using nscc::dsm::CopyMeta;
using nscc::dsm::Iteration;
using nscc::dsm::PropagationPolicy;
using nscc::dsm::SharedSpace;
using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sim::kMillisecond;

MachineConfig fast_config(int ntasks) {
  MachineConfig c;
  c.ntasks = ntasks;
  c.bus.propagation_delay = 0;
  c.bus.frame_overhead_bytes = 0;
  c.send_sw_overhead = 0;
  c.recv_sw_overhead = 0;
  return c;
}

Packet value_of(double x) {
  Packet p;
  p.pack_double(x);
  return p;
}

double as_double(const SharedSpace::Value& v) {
  Packet copy = v.data;
  return copy.unpack_double();
}

CopyMeta copy_at(Iteration iter) {
  CopyMeta m;
  m.iteration = iter;
  m.valid = true;
  return m;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ConsistencyRegistry, BuiltInsRegisteredInOrder) {
  const auto names = ConsistencyRegistry::instance().names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "nonstrict");
  EXPECT_EQ(names[1], "regional");
  EXPECT_EQ(names[2], "release-acquire");
  EXPECT_EQ(names[3], "eventual");
  for (const auto& name : names) {
    EXPECT_TRUE(ConsistencyRegistry::instance().contains(name));
    auto model = ConsistencyRegistry::instance().make(name);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
  }
}

TEST(ConsistencyRegistry, UnknownNameThrows) {
  EXPECT_FALSE(ConsistencyRegistry::instance().contains("strict"));
  EXPECT_THROW((void)ConsistencyRegistry::instance().make("strict"),
               std::invalid_argument);
}

TEST(ConsistencyRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(ConsistencyRegistry::instance().add(
                   "nonstrict", [] { return std::unique_ptr<ConsistencyModel>(); }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// nonstrict: the paper's predicate, verbatim
// ---------------------------------------------------------------------------

TEST(NonStrictModel, AdmitMatchesLegacyPredicate) {
  auto m = ConsistencyRegistry::instance().make("nonstrict");
  // Invalid copies never admit, whatever the bound.
  EXPECT_FALSE(m->admit(1, 0, 100, CopyMeta{}));
  // valid && iteration >= curr_iter - age.
  EXPECT_TRUE(m->admit(1, 10, 0, copy_at(10)));
  EXPECT_FALSE(m->admit(1, 10, 0, copy_at(9)));
  EXPECT_TRUE(m->admit(1, 10, 3, copy_at(7)));
  EXPECT_FALSE(m->admit(1, 10, 3, copy_at(6)));
  // Defaults: no parking, no stamps, no policy reshaping.
  EXPECT_TRUE(m->visible_on_arrival());
  EXPECT_FALSE(m->stamps_updates());
  PropagationPolicy p;
  p.coalesce = true;
  m->shape(p);
  EXPECT_TRUE(p.coalesce);
}

// ---------------------------------------------------------------------------
// regional: one stale member holds up the whole region
// ---------------------------------------------------------------------------

TEST(RegionalModel, StaleMemberBlocksWholeRegion) {
  auto m = ConsistencyRegistry::instance().make("regional");
  // Location 1 fresh, location 2 stale: reading 2 first registers it.
  EXPECT_FALSE(m->admit(2, 10, 2, copy_at(5)));  // 5 < 10-2: per-read fail.
  // Location 1 satisfies its own bound (9 >= 8) but member 2 does not, so
  // the region fence refuses the read of 1 too.
  EXPECT_FALSE(m->admit(1, 10, 2, copy_at(9)));
  // After 2 catches up, both admit and the fence opens for iteration 10.
  m->note_copy(2, copy_at(9));
  EXPECT_TRUE(m->admit(1, 10, 2, copy_at(9)));
  EXPECT_TRUE(m->admit(2, 10, 2, copy_at(9)));
}

TEST(RegionalModel, RegionFenceRequiresEveryMemberFresh) {
  auto m = ConsistencyRegistry::instance().make("regional");
  // Register both members fresh at iteration 0 (fence opens for iter 1).
  EXPECT_TRUE(m->admit(1, 1, 1, copy_at(0)));
  EXPECT_TRUE(m->admit(2, 1, 1, copy_at(0)));
  // Iteration 5, age 1: location 1 is fresh enough per-read, but member 2
  // is stuck at 0 — the region fence refuses until 2 catches up too.
  EXPECT_FALSE(m->admit(1, 5, 1, copy_at(5)));
  m->note_copy(2, copy_at(4));
  EXPECT_TRUE(m->admit(1, 5, 1, copy_at(5)));
  // The fence is now open for iteration 5: member 2 admits without
  // re-scanning even though the scan would also pass.
  EXPECT_TRUE(m->admit(2, 5, 1, copy_at(4)));
}

TEST(RegionalModel, AgeZeroDegeneratesToPerReadRule) {
  auto m = ConsistencyRegistry::instance().make("regional");
  // Seed a permanently-stale second member.
  EXPECT_FALSE(m->admit(2, 10, 0, copy_at(0)));
  // A whole-region fence would now deadlock mutually-reading peers at
  // age 0; the per-read rule must decide alone.
  EXPECT_TRUE(m->admit(1, 10, 0, copy_at(10)));
}

// ---------------------------------------------------------------------------
// release-acquire: parking and release-order stamps
// ---------------------------------------------------------------------------

TEST(ReleaseAcquireModel, StampsMonotoneAndOrderChecked) {
  auto m = ConsistencyRegistry::instance().make("release-acquire");
  EXPECT_FALSE(m->visible_on_arrival());
  EXPECT_TRUE(m->stamps_updates());
  EXPECT_EQ(m->next_stamp(), 1u);
  EXPECT_EQ(m->next_stamp(), 2u);
  EXPECT_TRUE(m->note_stamp(0, 1));
  EXPECT_TRUE(m->note_stamp(0, 3));
  EXPECT_FALSE(m->note_stamp(0, 2));  // Behind writer 0's last stamp.
  EXPECT_TRUE(m->note_stamp(1, 1));   // Independent per-writer sequences.
}

TEST(ReleaseAcquireModel, UpdatesInvisibleUntilAcquire) {
  VirtualMachine vm(fast_config(2));
  std::uint64_t parked = 0;
  std::uint64_t flushed = 0;
  double before = 0.0;
  double after = 0.0;
  vm.add_task("writer", [](Task& t) {
    PropagationPolicy p;
    p.consistency = "release-acquire";
    SharedSpace dsm(t, p);
    dsm.declare_written(7, {1});
    dsm.write(7, 0, value_of(1.0));
    t.compute(kMillisecond);
    dsm.write(7, 1, value_of(2.0));
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy p;
    p.consistency = "release-acquire";
    SharedSpace dsm(t, p);
    dsm.declare_read(7, 0);
    // Let both updates arrive while we are between acquire points.
    t.compute(4 * kMillisecond);
    dsm.poll();  // Drains the mailbox into the parked log — NOT an acquire.
    before = dsm.stats().updates_applied > 0 ? 1.0 : 0.0;
    parked = dsm.stats().updates_parked;
    const auto& v = dsm.read(7);  // Acquire point: parked updates publish.
    after = as_double(v);
    flushed = dsm.stats().updates_flushed;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(before, 0.0);  // Nothing applied before the acquire.
  EXPECT_EQ(parked, 2u);
  EXPECT_EQ(flushed, 2u);
  EXPECT_DOUBLE_EQ(after, 2.0);  // Newest parked value wins at the acquire.
}

TEST(ReleaseAcquireModel, BlockedGlobalReadStillCompletes) {
  VirtualMachine vm(fast_config(2));
  Iteration got = -1;
  vm.add_task("writer", [](Task& t) {
    PropagationPolicy p;
    p.consistency = "release-acquire";
    SharedSpace dsm(t, p);
    dsm.declare_written(3, {1});
    for (Iteration i = 0; i < 4; ++i) {
      dsm.write(3, i, value_of(static_cast<double>(i)));
      t.compute(kMillisecond);
    }
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy p;
    p.consistency = "release-acquire";
    SharedSpace dsm(t, p);
    dsm.declare_read(3, 0);
    // A blocked Global_Read is itself an acquire: arrivals during the wait
    // apply directly so the bound can ever be met.
    const auto& v = dsm.global_read(3, 3, 0);
    got = v.iteration;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(got, 3);
}

// ---------------------------------------------------------------------------
// eventual: never blocks past first validity
// ---------------------------------------------------------------------------

TEST(EventualModel, AdmitsAnyValidCopyAndShapesPolicy) {
  auto m = ConsistencyRegistry::instance().make("eventual");
  EXPECT_FALSE(m->admit(1, 100, 0, CopyMeta{}));  // Still needs first value.
  EXPECT_TRUE(m->admit(1, 100, 0, copy_at(0)));   // However stale.
  PropagationPolicy p;
  p.reliable_updates = true;
  m->shape(p);
  EXPECT_TRUE(p.coalesce);
  EXPECT_FALSE(p.reliable_updates);
}

TEST(EventualModel, GlobalReadDoesNotBlockOnStaleness) {
  VirtualMachine vm(fast_config(2));
  std::uint64_t blocks = 0;
  bool valid = false;
  vm.add_task("writer", [](Task& t) {
    PropagationPolicy p;
    p.consistency = "eventual";
    SharedSpace dsm(t, p);
    dsm.declare_written(5, {1});
    dsm.write(5, 0, value_of(42.0));
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy p;
    p.consistency = "eventual";
    SharedSpace dsm(t, p);
    dsm.declare_read(5, 0);
    t.compute(2 * kMillisecond);  // Let the first (and only) update land.
    // Demands iteration 50 under nonstrict; eventual serves iteration 0.
    const auto& v = dsm.global_read(5, 50, 0);
    valid = v.valid;
    blocks = dsm.stats().global_read_blocks;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_TRUE(valid);
  EXPECT_EQ(blocks, 0u);
}

// ---------------------------------------------------------------------------
// Cross-model matrix: the same producer/consumer program completes and
// delivers a valid value under every registered model.
// ---------------------------------------------------------------------------

TEST(ConsistencyMatrix, EveryModelCompletesProducerConsumer) {
  for (const auto& name : ConsistencyRegistry::instance().names()) {
    VirtualMachine vm(fast_config(2));
    double got = 0.0;
    vm.add_task("writer", [&](Task& t) {
      PropagationPolicy p;
      p.consistency = name;
      SharedSpace dsm(t, p);
      dsm.declare_written(9, {1});
      for (Iteration i = 0; i <= 2; ++i) {
        dsm.write(9, i, value_of(10.0 + static_cast<double>(i)));
        t.compute(kMillisecond);
      }
    });
    vm.add_task("reader", [&](Task& t) {
      PropagationPolicy p;
      p.consistency = name;
      SharedSpace dsm(t, p);
      dsm.declare_read(9, 0);
      const auto& v = dsm.global_read(9, 2, 2);
      got = as_double(v);
    });
    vm.run();
    EXPECT_FALSE(vm.deadlocked()) << name;
    EXPECT_GE(got, 10.0) << name;
  }
}

// The default model is byte-identical to a policy that never mentions
// consistency: same stats, same values, same timings.
TEST(ConsistencyMatrix, NonstrictIsByteIdenticalToDefault) {
  auto run = [](const char* model, nscc::dsm::DsmStats& out,
                nscc::sim::Time& end) {
    VirtualMachine vm(fast_config(2));
    vm.add_task("writer", [&](Task& t) {
      PropagationPolicy p;
      if (model != nullptr) p.consistency = model;
      SharedSpace dsm(t, p);
      dsm.declare_written(4, {1});
      for (Iteration i = 0; i < 8; ++i) {
        dsm.write(4, i, value_of(static_cast<double>(i)));
        t.compute(kMillisecond);
      }
    });
    vm.add_task("reader", [&](Task& t) {
      PropagationPolicy p;
      if (model != nullptr) p.consistency = model;
      SharedSpace dsm(t, p);
      dsm.declare_read(4, 0);
      for (Iteration i = 0; i < 8; i += 2) {
        (void)dsm.global_read(4, i, 1);
        t.compute(kMillisecond / 2);
      }
      out = dsm.stats();
      end = t.now();
    });
    vm.run();
    EXPECT_FALSE(vm.deadlocked());
  };
  nscc::dsm::DsmStats a;
  nscc::dsm::DsmStats b;
  nscc::sim::Time end_a = 0;
  nscc::sim::Time end_b = 0;
  run(nullptr, a, end_a);
  run("nonstrict", b, end_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_EQ(a.global_reads, b.global_reads);
  EXPECT_EQ(a.global_read_blocks, b.global_read_blocks);
  EXPECT_EQ(a.global_read_block_time, b.global_read_block_time);
  EXPECT_EQ(a.updates_applied, b.updates_applied);
  EXPECT_EQ(a.updates_parked, 0u);
  EXPECT_EQ(b.updates_parked, 0u);
}

}  // namespace
