// Tests for the staleness sanitizer and the end-to-end data-integrity
// layer: tolerance-contract lookup, the bounded shadow log, checksum
// auditing (including the sampler's re-publish-same-iteration case),
// deterministic payload corruption, CRC-checked frames behaving exactly as
// loss, and the purpose-built violation the strict mode must catch — a
// degraded read flowing into a location whose contract declares it
// intolerant.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/shared_space.hpp"
#include "fault/fault.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"
#include "obs/obs.hpp"
#include "rt/packet.hpp"
#include "rt/vm.hpp"
#include "sanitize/sanitize.hpp"
#include "sim/time.hpp"
#include "util/flags.hpp"

namespace {

using nscc::dsm::PropagationPolicy;
using nscc::dsm::SharedSpace;
using nscc::fault::CorruptionEffect;
using nscc::fault::corruption_effect;
using nscc::fault::Window;
using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sanitize::Level;
using nscc::sanitize::Sanitizer;
using nscc::sanitize::ToleranceRule;
using nscc::sanitize::ToleranceSpec;
using nscc::sanitize::ViolationKind;
using nscc::sim::kMillisecond;
using nscc::sim::kSecond;
using nscc::sim::Time;

MachineConfig fast_config(int ntasks) {
  MachineConfig c;
  c.ntasks = ntasks;
  c.bus.propagation_delay = 0;
  c.bus.frame_overhead_bytes = 0;
  c.send_sw_overhead = 0;
  c.recv_sw_overhead = 0;
  return c;
}

Packet value_of(double x) {
  Packet p;
  p.pack_double(x);
  return p;
}

std::uint64_t kind_count(const Sanitizer& san, ViolationKind kind) {
  return san.stats().violations[static_cast<int>(kind)];
}

// ---------------------------------------------------------------------------
// Levels and the tolerance contract
// ---------------------------------------------------------------------------

TEST(SanitizeLevel, NamesRoundTrip) {
  for (const Level level : {Level::kOff, Level::kTrack, Level::kStrict}) {
    const auto back = nscc::sanitize::level_from_name(
        nscc::sanitize::level_name(level));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, level);
  }
  EXPECT_FALSE(nscc::sanitize::level_from_name("paranoid").has_value());
}

TEST(ToleranceSpec, LookupPrecedence) {
  ToleranceSpec spec;
  spec.set_default(ToleranceRule{-1, true, true, false});
  spec.declare_range(100, 200, ToleranceRule{10, true, true, false});
  spec.declare_range(150, 160, ToleranceRule{5, true, true, false});
  spec.declare(155, ToleranceRule{0, false, false, true});

  // Undeclared location: the default.
  EXPECT_EQ(spec.rule_for(99).max_age, -1);
  EXPECT_EQ(spec.rule_for(200).max_age, -1);  // Ranges are half-open.
  // Covered by the outer range only.
  EXPECT_EQ(spec.rule_for(100).max_age, 10);
  EXPECT_EQ(spec.rule_for(199).max_age, 10);
  // The later (inner) range wins where both cover.
  EXPECT_EQ(spec.rule_for(151).max_age, 5);
  // A point declaration beats every range.
  EXPECT_EQ(spec.rule_for(155).max_age, 0);
  EXPECT_FALSE(spec.rule_for(155).tolerate_degraded);
  EXPECT_TRUE(spec.rule_for(155).require_aged);
}

// ---------------------------------------------------------------------------
// Deterministic payload corruption
// ---------------------------------------------------------------------------

TEST(Corruption, EffectIsDeterministicAndBounded) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    for (std::size_t bytes : {1u, 8u, 64u, 1500u}) {
      const CorruptionEffect a = corruption_effect(seed, bytes);
      const CorruptionEffect b = corruption_effect(seed, bytes);
      EXPECT_EQ(a.truncate_to, b.truncate_to);
      EXPECT_EQ(a.bit_flips, b.bit_flips);
      // Damage is never a no-op and always in bounds.
      if (a.truncate_to != static_cast<std::size_t>(-1)) {
        EXPECT_LT(a.truncate_to, bytes);
        EXPECT_TRUE(a.bit_flips.empty());
      } else {
        EXPECT_GE(a.bit_flips.size(), 1u);
        EXPECT_LE(a.bit_flips.size(), 3u);
        for (const std::size_t bit : a.bit_flips) EXPECT_LT(bit, bytes * 8);
      }
    }
  }
  // Seed 0 (the "not corrupted" sentinel) and empty payloads are no-ops.
  EXPECT_EQ(corruption_effect(0, 100).bit_flips.size(), 0u);
  EXPECT_EQ(corruption_effect(7, 0).bit_flips.size(), 0u);
}

TEST(Corruption, DamageChangesTheCrc) {
  Packet p;
  for (int i = 0; i < 16; ++i) p.pack_double(1.25 * i);
  const std::uint32_t clean = p.crc32();
  int damaged = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Packet copy = p;
    const CorruptionEffect effect = corruption_effect(seed, copy.byte_size());
    if (effect.truncate_to != static_cast<std::size_t>(-1)) {
      copy.truncate_to(effect.truncate_to);
    }
    for (const std::size_t bit : effect.bit_flips) copy.flip_bit(bit);
    if (copy.crc32() != clean) ++damaged;
  }
  // CRC32 catches every <=3-bit flip and every truncation at these sizes.
  EXPECT_EQ(damaged, 64);
}

// ---------------------------------------------------------------------------
// Sanitizer unit behaviour (standalone, no machine)
// ---------------------------------------------------------------------------

nscc::sanitize::Options track_options(ToleranceSpec spec) {
  nscc::sanitize::Options opt;
  opt.level = Level::kTrack;
  opt.spec = std::move(spec);
  return opt;
}

TEST(Sanitizer, ChecksumMatchesAnyEntryForTheIteration) {
  nscc::obs::Hub hub;
  ToleranceSpec spec;
  Sanitizer san(track_options(spec), hub);

  // The sampler's rollback path re-publishes iteration 5 with corrected
  // content: both checksums are writer-committed data for that iteration.
  san.record_write(0, 7, 5, 0xAAAA5555u, 16, 10);
  san.record_write(0, 7, 5, 0x1234ABCDu, 16, 20);

  san.audit_read(1, 7, 6, 1, true, false, 5, 0x1234ABCDu, 30);  // Newest.
  san.audit_read(1, 7, 6, 1, true, false, 5, 0xAAAA5555u, 40);  // Superseded.
  EXPECT_EQ(san.violations(), 0u);

  // A payload matching *neither* committed write is corruption.
  san.audit_read(1, 7, 6, 1, true, false, 5, 0xBADC0DEu, 50);
  EXPECT_EQ(kind_count(san, ViolationKind::kChecksum), 1u);
  ASSERT_EQ(san.recorded().size(), 1u);
  EXPECT_EQ(san.recorded()[0].kind, ViolationKind::kChecksum);
  EXPECT_EQ(san.recorded()[0].loc, 7);
}

TEST(Sanitizer, ShadowLogIsBoundedAndOldReadsCountAsUnverified) {
  nscc::obs::Hub hub;
  nscc::sanitize::Options opt = track_options(ToleranceSpec{});
  opt.shadow_depth = 4;
  Sanitizer san(opt, hub);

  for (int i = 0; i < 10; ++i) {
    san.record_write(0, 3, i, 0x1000u + static_cast<std::uint32_t>(i), 8,
                     i * 10);
  }
  EXPECT_EQ(san.stats().writes_recorded, 10u);
  EXPECT_EQ(san.stats().shadow_evictions, 6u);

  // Iteration 2 fell off the bounded log: cannot cross-check, no violation.
  san.audit_read(1, 3, 12, -1, true, false, 2, 0x1002u, 200);
  EXPECT_EQ(san.stats().checksum_unverified, 1u);
  EXPECT_EQ(san.violations(), 0u);
  // Iteration 9 is still shadowed and must match.
  san.audit_read(1, 3, 12, -1, true, false, 9, 0xFFFFu, 210);
  EXPECT_EQ(kind_count(san, ViolationKind::kChecksum), 1u);
}

TEST(Sanitizer, StalenessAuditedAgainstTightestBound) {
  nscc::obs::Hub hub;
  ToleranceSpec spec;
  spec.declare(5, ToleranceRule{2, true, true, false});
  Sanitizer san(track_options(spec), hub);
  san.record_write(0, 5, 10, 0x1u, 8, 0);

  // Within both the declared age and the contract: clean.
  san.audit_read(1, 5, 11, 4, true, false, 10, 0x1u, 10);
  EXPECT_EQ(san.violations(), 0u);
  // Within the read's declared age (4) but beyond the contract's bound (2):
  // the contract is the tighter limit and the read violates it.
  san.audit_read(1, 5, 13, 4, true, false, 10, 0x1u, 20);
  EXPECT_EQ(kind_count(san, ViolationKind::kStaleness), 1u);
  ASSERT_EQ(san.recorded().size(), 1u);
  EXPECT_EQ(san.recorded()[0].limit, 2);
}

TEST(Sanitizer, RequireAgedFlagsPlainReads) {
  nscc::obs::Hub hub;
  ToleranceSpec spec;
  spec.declare(9, ToleranceRule{0, true, true, true});
  spec.declare(10, ToleranceRule{0, true, true, false});
  Sanitizer san(track_options(spec), hub);
  san.record_write(0, 9, 0, 0x9u, 8, 0);
  san.record_write(0, 10, 0, 0xAu, 8, 0);

  // A plain (declared_age = -1) read of a require_aged location is itself
  // a staleness violation; the same read of a lenient location is not.
  san.audit_read(1, 9, -1, -1, true, false, 0, 0x9u, 10);
  san.audit_read(1, 10, -1, -1, true, false, 0, 0xAu, 10);
  EXPECT_EQ(kind_count(san, ViolationKind::kStaleness), 1u);
  EXPECT_EQ(san.violations(), 1u);
}

// ---------------------------------------------------------------------------
// Machine-level: the sanitizer wired through rt + dsm
// ---------------------------------------------------------------------------

/// The ISSUE's purpose-built violation: a degraded read (producer declared
/// dead, freshest local copy served past its bound) flowing into a location
/// whose contract says degraded data must never reach the consumer.  Must
/// be reported deterministically.
TEST(Sanitize, DegradedReadIntoIntolerantLocationIsFlagged) {
  for (int rep = 0; rep < 2; ++rep) {
    MachineConfig cfg = fast_config(2);
    cfg.sanitize.level = Level::kStrict;
    cfg.sanitize.spec.declare(1, ToleranceRule{0, false, true, false});
    VirtualMachine vm(cfg);

    vm.add_task("writer", [](Task& t) {
      SharedSpace space(t);
      space.declare_written(1, {1});
      space.write(1, 0, value_of(2.5));
      t.compute(kMillisecond);  // Publish iteration 0, then die.
    });
    vm.add_task("reader", [&](Task& t) {
      PropagationPolicy policy;
      policy.writer_alive = [&](int id) { return vm.task_alive(id); };
      policy.liveness_poll = kMillisecond;
      SharedSpace space(t, policy);
      space.declare_read(1, 0);
      t.compute(5 * kMillisecond);
      // Demands iteration 10 with age 0; the writer is long dead, so the
      // read unblocks degraded with the stale iteration-0 copy.
      const auto& v = space.global_read(1, 10, 0);
      EXPECT_TRUE(v.valid);
      EXPECT_TRUE(v.degraded);
    });
    vm.run();

    ASSERT_FALSE(vm.deadlocked());
    ASSERT_NE(vm.sanitizer(), nullptr);
    EXPECT_EQ(kind_count(*vm.sanitizer(), ViolationKind::kDegraded), 1u)
        << "rep " << rep;
    EXPECT_EQ(vm.sanitizer()->violations(), 1u) << "rep " << rep;
    ASSERT_EQ(vm.sanitizer()->recorded().size(), 1u);
    EXPECT_EQ(vm.sanitizer()->recorded()[0].loc, 1);
    EXPECT_EQ(vm.sanitizer()->recorded()[0].reader, 1);
  }
}

/// Satellite regression for the documented dsm::Value corner: a location
/// whose producer dies before ever writing comes back degraded AND !valid.
/// The audit must treat it as the (more fundamental) invalid case.
TEST(Sanitize, DegradedAndInvalidReadIsFlaggedAsInvalid) {
  MachineConfig cfg = fast_config(2);
  cfg.sanitize.level = Level::kTrack;
  cfg.sanitize.spec.declare(4, ToleranceRule{-1, true, false, false});
  VirtualMachine vm(cfg);

  bool saw_degraded_invalid = false;
  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(4, {1});
    t.compute(kMillisecond);  // Dies without ever writing location 4.
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy policy;
    policy.writer_alive = [&](int id) { return vm.task_alive(id); };
    policy.liveness_poll = kMillisecond;
    SharedSpace space(t, policy);
    space.declare_read(4, 0);
    t.compute(5 * kMillisecond);
    const auto& v = space.global_read(4, 3, 0);
    saw_degraded_invalid = v.degraded && !v.valid;
  });
  vm.run();

  ASSERT_FALSE(vm.deadlocked());
  EXPECT_TRUE(saw_degraded_invalid);
  ASSERT_NE(vm.sanitizer(), nullptr);
  EXPECT_EQ(kind_count(*vm.sanitizer(), ViolationKind::kInvalid), 1u);
  EXPECT_EQ(kind_count(*vm.sanitizer(), ViolationKind::kDegraded), 0u);
}

TEST(Sanitize, CleanBoundedRunAuditsEverythingAndReportsNothing) {
  MachineConfig cfg = fast_config(2);
  cfg.sanitize.level = Level::kStrict;
  cfg.sanitize.spec.declare(2, ToleranceRule{1, false, false, true});
  VirtualMachine vm(cfg);

  constexpr int kIters = 20;
  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(2, {1});
    for (int i = 0; i < kIters; ++i) {
      space.write(2, i, value_of(static_cast<double>(i)));
      t.compute(kMillisecond);
    }
  });
  vm.add_task("reader", [](Task& t) {
    SharedSpace space(t);
    space.declare_read(2, 0);
    for (int i = 1; i < kIters; ++i) {
      const auto& v = space.global_read(2, i, 1);
      ASSERT_TRUE(v.valid);
      ASSERT_GE(v.iteration, i - 1);
    }
  });
  vm.run();

  ASSERT_FALSE(vm.deadlocked());
  ASSERT_NE(vm.sanitizer(), nullptr);
  const auto& stats = vm.sanitizer()->stats();
  EXPECT_EQ(stats.writes_recorded, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(stats.reads_audited, static_cast<std::uint64_t>(kIters - 1));
  EXPECT_EQ(stats.total_violations(), 0u);
}

TEST(Sanitize, OffMeansNoSanitizerAndNoOverhead) {
  MachineConfig cfg = fast_config(1);
  VirtualMachine vm(cfg);
  EXPECT_EQ(vm.sanitizer(), nullptr);
}

// ---------------------------------------------------------------------------
// CRC-checked corruption behaves exactly as loss
// ---------------------------------------------------------------------------

struct RecoveryOutcome {
  double got = 0.0;
  std::int64_t got_iter = -1;
  Time finished_at = 0;
  std::uint64_t escalations = 0;
  std::uint64_t requests = 0;
  std::uint64_t updates_applied = 0;
  bool deadlocked = true;
  std::uint64_t wire_losses = 0;
  std::uint64_t crc_drops = 0;
};

/// One writer update destroyed in a scheduled window, recovered by the
/// Global_Read starvation watchdog over the reliable demand path.  The
/// window is either an outage (the frame dies on the wire) or a corrupt
/// window (the frame arrives damaged and the CRC check discards it).
RecoveryOutcome run_single_drop_recovery(bool corrupt) {
  MachineConfig cfg = fast_config(2);
  cfg.fault.seed = 1;
  if (corrupt) {
    cfg.fault.corrupt_windows.push_back(Window{0, 2 * kMillisecond});
  } else {
    cfg.fault.outages.push_back(Window{0, 2 * kMillisecond});
  }
  cfg.transport.enabled = true;
  VirtualMachine vm(cfg);

  RecoveryOutcome out;
  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    space.write(1, 5, value_of(6.25));  // Sent inside the window: destroyed.
    t.compute(kSecond);  // Stay alive for the escalated demand.
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy policy;
    policy.read_timeout = 20 * kMillisecond;
    SharedSpace space(t, policy);
    space.declare_read(1, 0);
    const auto& v = space.global_read(1, 5, 0);
    Packet copy = v.data;
    out.got = copy.unpack_double();
    out.got_iter = v.iteration;
    out.finished_at = t.now();
    out.escalations = space.stats().read_escalations;
    out.requests = space.stats().requests_sent;
    out.updates_applied = space.stats().updates_applied;
  });
  vm.run();

  out.deadlocked = vm.deadlocked();
  out.wire_losses = vm.fault_injector()->stats().frames_lost;
  out.crc_drops = vm.transport_stats().crc_drops;
  return out;
}

/// Satellite acceptance: a bit-flipped frame is dropped by the CRC check,
/// the watchdog demand retransmits it, and every workload-visible metric is
/// byte-identical to the equivalent loss-only schedule.  Only the fault
/// bookkeeping may differ (wire loss vs CRC drop).
TEST(Sanitize, CorruptedFrameRecoversExactlyLikeLostFrame) {
  const RecoveryOutcome loss = run_single_drop_recovery(false);
  const RecoveryOutcome corrupt = run_single_drop_recovery(true);

  ASSERT_FALSE(loss.deadlocked);
  ASSERT_FALSE(corrupt.deadlocked);
  EXPECT_DOUBLE_EQ(loss.got, 6.25);
  EXPECT_DOUBLE_EQ(corrupt.got, loss.got);
  EXPECT_EQ(corrupt.got_iter, loss.got_iter);
  EXPECT_EQ(corrupt.finished_at, loss.finished_at);
  EXPECT_EQ(corrupt.escalations, loss.escalations);
  EXPECT_EQ(corrupt.requests, loss.requests);
  EXPECT_EQ(corrupt.updates_applied, loss.updates_applied);

  // The two runs lose the frame in different layers — and nowhere else.
  EXPECT_GE(loss.wire_losses, 1u);
  EXPECT_EQ(loss.crc_drops, 0u);
  EXPECT_EQ(corrupt.wire_losses, 0u);
  EXPECT_GE(corrupt.crc_drops, 1u);
}

// ---------------------------------------------------------------------------
// The driver's strict gate
// ---------------------------------------------------------------------------

/// A workload whose every run feeds a degraded read into a location its own
/// contract declares degraded-intolerant — the driver's strict mode must
/// turn that into exit code 4, while track mode reports and exits 0.
class ViolatingWorkload final : public nscc::harness::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "test.violating"; }
  [[nodiscard]] std::string description() const override {
    return "degraded read into a degraded-intolerant location";
  }
  void register_params(nscc::util::Flags&) const override {}
  void configure(const nscc::util::Flags&) override {}
  [[nodiscard]] nscc::sanitize::ToleranceSpec tolerance_spec(
      const nscc::harness::RunConfig&) const override {
    nscc::sanitize::ToleranceSpec spec;
    spec.declare(1, ToleranceRule{0, false, true, false});
    return spec;
  }
  nscc::harness::RunStats run(const nscc::harness::RunConfig&,
                              const MachineConfig& machine) override {
    MachineConfig cfg = machine;
    cfg.ntasks = 2;
    VirtualMachine vm(cfg);
    vm.add_task("writer", [](Task& t) {
      SharedSpace space(t);
      space.declare_written(1, {1});
      space.write(1, 0, value_of(1.0));
      t.compute(kMillisecond);
    });
    vm.add_task("reader", [&](Task& t) {
      PropagationPolicy policy;
      policy.writer_alive = [&](int id) { return vm.task_alive(id); };
      policy.liveness_poll = kMillisecond;
      SharedSpace space(t, policy);
      space.declare_read(1, 0);
      t.compute(5 * kMillisecond);
      (void)space.global_read(1, 10, 0);
    });
    vm.run();
    nscc::harness::RunStats stats;
    stats.completion_time = vm.engine().now();
    stats.deadlocked = vm.deadlocked();
    if (vm.sanitizer() != nullptr) {
      stats.sanitize_violations = vm.sanitizer()->stats().total_violations();
    }
    return stats;
  }
};

int drive_violating(const char* sanitize_flag) {
  static const bool registered = nscc::harness::Registry::global().add(
      std::make_unique<ViolatingWorkload>());
  (void)registered;
  nscc::harness::DriveOptions options;
  options.workload = "test.violating";
  options.default_variants = "partial";
  std::string flag = sanitize_flag;
  const char* argv[] = {"test", flag.c_str()};
  return nscc::harness::drive(2, const_cast<char**>(argv), options);
}

TEST(Driver, StrictTurnsContractViolationsIntoExitFour) {
  EXPECT_EQ(drive_violating("--sanitize=strict"), 4);
  EXPECT_EQ(drive_violating("--sanitize=track"), 0);
  EXPECT_EQ(drive_violating("--sanitize=off"), 0);
}

// ---------------------------------------------------------------------------
// The --corrupt-rate flag
// ---------------------------------------------------------------------------

TEST(FaultFlags, CorruptRateReachesThePlan) {
  nscc::util::Flags flags;
  nscc::fault::add_flags(flags);
  const char* argv[] = {"prog", "--corrupt-rate=0.25"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  const nscc::fault::FaultPlan plan = nscc::fault::plan_from_flags(flags);
  EXPECT_DOUBLE_EQ(plan.link.corrupt_prob, 0.25);
  EXPECT_FALSE(plan.empty());
}

}  // namespace
