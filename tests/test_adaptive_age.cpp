// Unit tests for the AIMD adaptive-age controller (paper Section 6's
// dynamic staleness setting): additive increase when reads starve, gentle
// decrease when freshness is cheap, and the clamping/counting contract.
#include <gtest/gtest.h>

#include "dsm/adaptive_age.hpp"
#include "sim/time.hpp"

namespace {

using nscc::dsm::AdaptiveAgeController;
using Config = nscc::dsm::AdaptiveAgeController::Config;
using nscc::sim::kMillisecond;

TEST(AdaptiveAge, InitialAgeClampedToRange) {
  Config c;
  c.min_age = 2;
  c.max_age = 8;
  c.initial_age = 100;
  EXPECT_EQ(AdaptiveAgeController(c).age(), 8);
  c.initial_age = 0;
  EXPECT_EQ(AdaptiveAgeController(c).age(), 2);
  c.initial_age = 5;
  EXPECT_EQ(AdaptiveAgeController(c).age(), 5);
}

TEST(AdaptiveAge, BlockedIntervalRaisesAgeByIncreaseStep) {
  AdaptiveAgeController ctl;  // initial 10, +4 on starvation.
  // 10% of the interval blocked, above the 5% threshold.
  ctl.observe(10 * kMillisecond, kMillisecond, 0.0);
  EXPECT_EQ(ctl.age(), 14);
  EXPECT_EQ(ctl.increases(), 1u);
  EXPECT_EQ(ctl.decreases(), 0u);
}

TEST(AdaptiveAge, IncreaseCapsAtMaxWithoutCounting) {
  Config c;
  c.initial_age = 49;
  AdaptiveAgeController ctl(c);  // max 50, step +4.
  ctl.observe(10 * kMillisecond, 10 * kMillisecond, 0.0);
  EXPECT_EQ(ctl.age(), 50);
  EXPECT_EQ(ctl.increases(), 1u);
  // Already pinned at max: no change, so no increase is counted.
  ctl.observe(10 * kMillisecond, 10 * kMillisecond, 0.0);
  EXPECT_EQ(ctl.age(), 50);
  EXPECT_EQ(ctl.increases(), 1u);
}

TEST(AdaptiveAge, ComfortableIntervalLowersAge) {
  AdaptiveAgeController ctl;  // initial 10, -1 when comfortable.
  // Nothing blocked and staleness well inside half the budget.
  ctl.observe(10 * kMillisecond, 0, 1.0);
  EXPECT_EQ(ctl.age(), 9);
  EXPECT_EQ(ctl.decreases(), 1u);
}

TEST(AdaptiveAge, NoDecreaseWhenStalenessNearBudget) {
  AdaptiveAgeController ctl;  // initial 10, slack 0.5.
  // Unblocked but observed staleness 6 >= 0.5 * 10: freshness is not
  // cheap, hold the age.
  ctl.observe(10 * kMillisecond, 0, 6.0);
  EXPECT_EQ(ctl.age(), 10);
  EXPECT_EQ(ctl.decreases(), 0u);
}

TEST(AdaptiveAge, DecreaseFloorsAtMinWithoutCounting) {
  Config c;
  c.min_age = 0;
  c.initial_age = 1;
  AdaptiveAgeController ctl(c);
  ctl.observe(10 * kMillisecond, 0, 0.0);
  EXPECT_EQ(ctl.age(), 0);
  EXPECT_EQ(ctl.decreases(), 1u);
  // Pinned at the floor: 0.0 < 0.5 * 0 is false, so no further decrease
  // fires (and none is counted).
  ctl.observe(10 * kMillisecond, 0, 0.0);
  EXPECT_EQ(ctl.age(), 0);
  EXPECT_EQ(ctl.decreases(), 1u);
}

TEST(AdaptiveAge, EmptyIntervalIsIgnored) {
  AdaptiveAgeController ctl;
  ctl.observe(0, 0, 0.0);
  ctl.observe(-kMillisecond, 0, 0.0);
  EXPECT_EQ(ctl.age(), 10);
  EXPECT_EQ(ctl.increases(), 0u);
  EXPECT_EQ(ctl.decreases(), 0u);
}

TEST(AdaptiveAge, AlternatingLoadConvergesWithinBounds) {
  AdaptiveAgeController ctl;
  for (int round = 0; round < 100; ++round) {
    if (round % 2 == 0) {
      ctl.observe(10 * kMillisecond, 2 * kMillisecond, 0.0);  // Starved.
    } else {
      ctl.observe(10 * kMillisecond, 0, 0.0);  // Comfortable.
    }
    EXPECT_GE(ctl.age(), 0);
    EXPECT_LE(ctl.age(), 50);
  }
  // Net drift is +3 per starve/relax pair until the cap absorbs it; the
  // final (comfortable) round steps one back off the cap.
  EXPECT_EQ(ctl.age(), 49);
}

}  // namespace
