// Tests for the iterative-solver application: CSR mechanics, system
// generators, sequential Jacobi convergence, and the parallel solver's
// convergence guarantee under every consistency mode (the Bertsekas &
// Tsitsiklis bounded-staleness result the paper builds on).
#include <gtest/gtest.h>

#include <cmath>

#include "solver/jacobi.hpp"
#include "solver/linear_system.hpp"

namespace {

using nscc::dsm::Mode;
using nscc::solver::CsrMatrix;
using nscc::solver::JacobiConfig;
using nscc::solver::LinearSystem;
using nscc::solver::ParallelJacobiConfig;

TEST(CsrMatrixTest, MultiplyAndResidual) {
  // [2 1; 0 3] * [1, 2] = [4, 6].
  const auto m = CsrMatrix::from_rows(
      2, {{{0, 2.0}, {1, 1.0}}, {{1, 3.0}}});
  std::vector<double> y;
  m.multiply({1.0, 2.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(m.residual_inf({1.0, 2.0}, {4.0, 6.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.residual_inf({1.0, 2.0}, {4.0, 8.0}), 2.0);
}

TEST(CsrMatrixTest, DiagonalAccessAndDominance) {
  const auto dom = CsrMatrix::from_rows(
      2, {{{0, 3.0}, {1, 1.0}}, {{0, -1.0}, {1, 2.5}}});
  EXPECT_DOUBLE_EQ(dom.diagonal(0), 3.0);
  EXPECT_DOUBLE_EQ(dom.diagonal(1), 2.5);
  EXPECT_TRUE(dom.strictly_diagonally_dominant());
  const auto weak = CsrMatrix::from_rows(
      2, {{{0, 1.0}, {1, 1.0}}, {{1, 2.0}}});
  EXPECT_FALSE(weak.strictly_diagonally_dominant());
}

TEST(CsrMatrixTest, RowDotExcludesDiagonal) {
  const auto m = CsrMatrix::from_rows(
      2, {{{0, 5.0}, {1, 2.0}}, {{0, 1.0}, {1, 4.0}}});
  EXPECT_DOUBLE_EQ(m.row_dot_excluding_diagonal(0, {10.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(m.row_dot_excluding_diagonal(1, {10.0, 3.0}), 10.0);
}

TEST(Generators, Poisson2dIsDominantWithConsistentRhs) {
  const auto sys = nscc::solver::make_poisson_2d(8, 5);
  EXPECT_EQ(sys.size(), 64);
  EXPECT_TRUE(sys.a.strictly_diagonally_dominant());
  // b was generated as A * x_true.
  EXPECT_NEAR(sys.a.residual_inf(sys.x_true, sys.b), 0.0, 1e-12);
}

TEST(Generators, DominantRandomRespectsParameters) {
  const auto sys = nscc::solver::make_dominant_random(100, 4, 1.5, 7);
  EXPECT_EQ(sys.size(), 100);
  EXPECT_TRUE(sys.a.strictly_diagonally_dominant());
  EXPECT_THROW(nscc::solver::make_dominant_random(10, 2, 0.9, 1),
               std::invalid_argument);
}

TEST(SequentialJacobi, ConvergesToTrueSolution) {
  const auto sys = nscc::solver::make_poisson_2d(10, 11);
  JacobiConfig cfg;
  cfg.tolerance = 1e-9;
  const auto r = nscc::solver::run_sequential_jacobi(sys, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.residual, 1e-9);
  EXPECT_LE(r.error_inf, 1e-7);
  EXPECT_GT(r.completion_time, 0);
  EXPECT_GT(r.sweeps, 10);
}

TEST(SequentialJacobi, TighterToleranceCostsMoreSweeps) {
  const auto sys = nscc::solver::make_dominant_random(200, 5, 1.3, 13);
  JacobiConfig loose;
  loose.tolerance = 1e-4;
  JacobiConfig tight;
  tight.tolerance = 1e-10;
  const auto a = nscc::solver::run_sequential_jacobi(sys, loose);
  const auto b = nscc::solver::run_sequential_jacobi(sys, tight);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_LT(a.sweeps, b.sweeps);
  EXPECT_LT(a.completion_time, b.completion_time);
}

class JacobiEveryMode : public ::testing::TestWithParam<Mode> {};

TEST_P(JacobiEveryMode, ParallelConvergesUnderAnyConsistency) {
  // The asynchronous-convergence theorem in action: any bounded staleness
  // still reaches the fixed point of a contraction.
  const auto sys = nscc::solver::make_poisson_2d(12, 17);
  ParallelJacobiConfig cfg;
  cfg.mode = GetParam();
  cfg.age = 8;
  cfg.processors = 4;
  cfg.tolerance = 1e-7;
  cfg.check_interval = 25;
  cfg.propagation.coalesce = GetParam() == Mode::kPartialAsync;
  cfg.node_speed_spread = 0.3;
  const auto r = nscc::solver::run_parallel_jacobi(sys, cfg, {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.error_inf, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Modes, JacobiEveryMode,
                         ::testing::Values(Mode::kSynchronous,
                                           Mode::kAsynchronous,
                                           Mode::kPartialAsync));

TEST(ParallelJacobi, AsynchronyCostsIterationsButSavesTime) {
  const auto sys = nscc::solver::make_poisson_2d(16, 19);
  ParallelJacobiConfig cfg;
  cfg.processors = 4;
  cfg.tolerance = 1e-7;
  cfg.check_interval = 25;
  cfg.node_speed_spread = 0.3;

  cfg.mode = Mode::kSynchronous;
  const auto sync = nscc::solver::run_parallel_jacobi(sys, cfg, {});
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 10;
  cfg.propagation.coalesce = true;
  const auto partial = nscc::solver::run_parallel_jacobi(sys, cfg, {});

  ASSERT_TRUE(sync.converged);
  ASSERT_TRUE(partial.converged);
  // Stale reads slow per-sweep contraction: at least as many sweeps...
  EXPECT_GE(partial.sweeps, sync.sweeps);
  // ...but each sweep is cheaper (no barrier, no fresh-data wait).
  EXPECT_LT(partial.completion_time, sync.completion_time);
}

TEST(ParallelJacobi, StalenessBoundIsRespected) {
  const auto sys = nscc::solver::make_poisson_2d(12, 23);
  ParallelJacobiConfig cfg;
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 4;
  cfg.processors = 4;
  cfg.tolerance = 1e-6;
  cfg.check_interval = 25;
  cfg.node_speed_spread = 0.4;
  const auto r = nscc::solver::run_parallel_jacobi(sys, cfg, {});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.mean_staleness, 4.0 + 1e-9);
}

TEST(ParallelJacobi, DeterministicForSeed) {
  const auto sys = nscc::solver::make_poisson_2d(10, 29);
  ParallelJacobiConfig cfg;
  cfg.mode = Mode::kAsynchronous;
  cfg.processors = 3;
  cfg.tolerance = 1e-6;
  cfg.seed = 31;
  const auto a = nscc::solver::run_parallel_jacobi(sys, cfg, {});
  const auto b = nscc::solver::run_parallel_jacobi(sys, cfg, {});
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

TEST(ParallelJacobi, BackgroundLoadHurtsSyncMoreThanPartial) {
  const auto sys = nscc::solver::make_poisson_2d(16, 37);
  ParallelJacobiConfig cfg;
  cfg.processors = 4;
  cfg.tolerance = 1e-7;
  cfg.check_interval = 25;

  cfg.mode = Mode::kSynchronous;
  const auto sync0 = nscc::solver::run_parallel_jacobi(sys, cfg, {}, 0.0);
  const auto sync6 = nscc::solver::run_parallel_jacobi(sys, cfg, {}, 6e6);
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 10;
  cfg.propagation.coalesce = true;
  const auto part0 = nscc::solver::run_parallel_jacobi(sys, cfg, {}, 0.0);
  const auto part6 = nscc::solver::run_parallel_jacobi(sys, cfg, {}, 6e6);

  // Load hurts everyone; the bounded-staleness program stays ahead of the
  // synchronous one at every load level (it trades extra sweeps for never
  // waiting on fresh data).
  EXPECT_GT(sync6.completion_time, sync0.completion_time);
  EXPECT_GT(part6.completion_time, part0.completion_time);
  EXPECT_LT(part0.completion_time, sync0.completion_time);
  EXPECT_LT(part6.completion_time, sync6.completion_time);
}

}  // namespace
