// Tests for the observability subsystem: metrics registry, event tracer
// (ring buffer + Chrome trace-event JSON export), virtual-time sampler, and
// the end-to-end instrumentation of a deterministic two-task DSM run
// (registry counters, trace-file validity, time-series CSV).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dsm/shared_space.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "rt/vm.hpp"
#include "util/flags.hpp"

namespace {

using nscc::obs::Counter;
using nscc::obs::Gauge;
using nscc::obs::Histogram;
using nscc::obs::Registry;
using nscc::obs::Sampler;
using nscc::obs::Tracer;
using nscc::sim::kMillisecond;

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, enough to assert the
// exporters emit well-formed JSON (no third-party parser in the image).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    i_ = 0;
    return value() && (skip_ws(), i_ == s_.size());
  }

 private:
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == '}') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == ']') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;  // Skip the escaped character.
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // Closing quote.
    return true;
  }

  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' ||
            s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }

  [[nodiscard]] char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
      ++i_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Metrics primitives.

TEST(Metrics, CounterAndGauge) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge g;
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Metrics, HistogramLogBuckets) {
  Histogram h;
  h.observe(0.25);  // < 1 lands in bucket 0.
  h.observe(1.0);   // [1, 2) is bucket 1.
  h.observe(1.5);
  h.observe(2.0);  // [2, 4) is bucket 2.
  h.observe(3.0);
  h.observe(1000.0);  // [512, 1024) is bucket 10.
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), (0.25 + 1.0 + 1.5 + 2.0 + 3.0 + 1000.0) / 6.0, 1e-12);
  // Bucket-resolution quantiles: the 3rd of 6 observations (1.5) sits in
  // bucket 1, whose upper bound is 2; the top quantile clamps to max.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), Histogram::bucket_upper(1));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Metrics, EmptyHistogramIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, RegistryKeysByNameAndPid) {
  Registry reg;
  reg.counter("msgs", 0).inc(5);
  reg.counter("msgs", 1).inc(7);
  reg.counter("msgs").inc();  // pid -1: machine-wide.
  EXPECT_EQ(reg.counter_value("msgs", 0), 5u);
  EXPECT_EQ(reg.counter_value("msgs", 1), 7u);
  EXPECT_EQ(reg.counter_value("msgs"), 1u);
  EXPECT_EQ(reg.counter_value("absent", 3), 0u);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  // Handles are get-or-create and stable.
  Counter& again = reg.counter("msgs", 0);
  again.inc();
  EXPECT_EQ(reg.counter_value("msgs", 0), 6u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, RegistryExportsCsvAndJson) {
  Registry reg;
  reg.counter("a.count", 2).inc(3);
  reg.gauge("b.level").set(1.25);
  reg.histogram("c.dist", 0).observe(4.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("name,pid,kind,value,count,max"), std::string::npos);
  EXPECT_NE(csv.find("a.count,2,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("b.level,-1,gauge,1.25"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"c.dist\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t(16);
  t.complete(0, "span", 10, 5);
  t.instant(0, "point", 10);
  t.counter(0, "level", 10, 3);
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, RingOverwritesOldest) {
  Tracer t(4);
  t.enable(true);
  for (int i = 0; i < 6; ++i) {
    t.instant(0, "e", i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().ts, 2);  // Oldest two (ts 0, 1) were overwritten.
  EXPECT_EQ(evs.back().ts, 5);
}

TEST(Tracer, ChromeJsonIsValidAndCarriesEvents) {
  Tracer t(64);
  t.enable(true);
  t.set_track_name(3, "worker-three");
  t.complete(3, "Global_Read", 1500, 2500, "loc", 7, "need", 2);
  t.instant(3, "dsm.update.deliver", 4200, "loc", 7);
  t.counter(3, "inflight", 5000, 2);
  const std::string json = t.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Global_Read\""), std::string::npos);
  EXPECT_NE(json.find("worker-three"), std::string::npos);
  // 1500 ns = 1.500 us; durations likewise are exported in microseconds.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"loc\":7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler.

TEST(Sampler, RowsAndExports) {
  Sampler s;
  double level = 1.0;
  s.add_probe("level", [&] { return level; });
  s.add_probe("twice", [&] { return 2.0 * level; });
  s.sample_now(0);
  level = 3.0;
  s.sample_now(50 * kMillisecond);
  ASSERT_EQ(s.rows().size(), 2u);
  EXPECT_EQ(s.rows()[1].t, 50 * kMillisecond);
  EXPECT_DOUBLE_EQ(s.rows()[1].values[1], 6.0);
  const std::string csv = s.to_csv();
  EXPECT_NE(csv.find("time_ns,time_s,level,twice"), std::string::npos);
  EXPECT_TRUE(JsonChecker(s.to_json()).valid());
}

// ---------------------------------------------------------------------------
// Flags glue.

TEST(ObsFlags, RoundTripThroughFlagSet) {
  nscc::util::Flags flags;
  nscc::obs::add_flags(flags);
  const char* argv[] = {"prog", "--trace-out=/tmp/t.json",
                        "--metrics-out=/tmp/m.csv", "--sample-interval=10"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));
  const auto opt = nscc::obs::options_from_flags(flags);
  EXPECT_EQ(opt.trace_path, "/tmp/t.json");
  EXPECT_EQ(opt.metrics_path, "/tmp/m.csv");
  EXPECT_EQ(opt.sample_interval, 10 * kMillisecond);
}

TEST(ObsFlags, DefaultsLeaveObservabilityOff) {
  nscc::util::Flags flags;
  nscc::obs::add_flags(flags);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  const auto opt = nscc::obs::options_from_flags(flags);
  nscc::obs::Hub hub(opt);
  EXPECT_FALSE(hub.active());
  EXPECT_FALSE(hub.tracing());
}

// ---------------------------------------------------------------------------
// End-to-end: a deterministic two-task DSM run, fully observed.

/// Producer writes 12 iterations of one location at 20ms per step; consumer
/// does Global_Read with age 3 at 2ms per step (same scenario as
/// examples/quickstart, so the counters below are fully determined).
class ObsEndToEnd : public ::testing::Test {
 protected:
  static constexpr nscc::dsm::LocationId kLoc = 1;
  static constexpr nscc::dsm::Iteration kIters = 12;
  static constexpr nscc::dsm::Iteration kAge = 3;

  void SetUp() override {
    trace_path_ = ::testing::TempDir() + "nscc_obs_trace.json";
    metrics_path_ = ::testing::TempDir() + "nscc_obs_metrics.csv";

    nscc::rt::MachineConfig machine;
    machine.ntasks = 2;
    machine.obs.enable = true;
    machine.obs.trace_path = trace_path_;
    machine.obs.metrics_path = metrics_path_;
    machine.obs.sample_interval = 10 * kMillisecond;
    vm_ = std::make_unique<nscc::rt::VirtualMachine>(machine);

    vm_->add_task("producer", [](nscc::rt::Task& t) {
      nscc::dsm::SharedSpace space(t);
      space.declare_written(kLoc, {1});
      for (nscc::dsm::Iteration i = 0; i < kIters; ++i) {
        t.compute(20 * kMillisecond);
        nscc::rt::Packet p;
        p.pack_double(static_cast<double>(i));
        space.write(kLoc, i, std::move(p));
      }
    });
    vm_->add_task("consumer", [](nscc::rt::Task& t) {
      nscc::dsm::SharedSpace space(t);
      space.declare_read(kLoc, 0);
      for (nscc::dsm::Iteration i = 0; i < kIters; ++i) {
        (void)space.global_read(kLoc, i, kAge);
        t.compute(2 * kMillisecond);
      }
    });
    vm_->run();
  }
  void TearDown() override {
    vm_.reset();
    std::remove(trace_path_.c_str());
    std::remove(metrics_path_.c_str());
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<nscc::rt::VirtualMachine> vm_;
};

TEST_F(ObsEndToEnd, RegistryCountsTheScenario) {
  const Registry& reg = vm_->obs().registry();
  // Producer (pid 0) wrote 12 iterations; every update is fresher than the
  // consumer's copy, so all 12 apply at the consumer (pid 1).
  EXPECT_EQ(reg.counter_value("dsm.writes", 0), 12u);
  EXPECT_EQ(reg.counter_value("dsm.updates_sent", 0), 12u);
  // The consumer's last read needs iteration >= 11 - age = 8, so it applies
  // at least iterations 0..8 before its task ends; updates still in flight
  // when it finishes are never applied.
  EXPECT_GE(reg.counter_value("dsm.updates_applied", 1), 9u);
  EXPECT_LE(reg.counter_value("dsm.updates_applied", 1), 12u);
  EXPECT_EQ(reg.counter_value("dsm.updates_stale_dropped", 1), 0u);
  EXPECT_EQ(reg.counter_value("dsm.global_reads", 1), 12u);
  // The fast consumer outruns the slow producer and must block: at 2ms per
  // consumer step vs 20ms per producer step, only the first read (age 3
  // ahead of nothing... the very first value) and subsequent catch-ups
  // block.  The exact count is deterministic; assert the invariant bounds
  // plus agreement with the histogram count.
  const std::uint64_t blocks = reg.counter_value("dsm.global_read_blocks", 1);
  EXPECT_GT(blocks, 0u);
  EXPECT_LE(blocks, 12u);
  EXPECT_GT(reg.counter_value("dsm.global_read_block_time_ns", 1), 0u);
  const Histogram* staleness = reg.find_histogram("dsm.staleness");
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(staleness->count(), 12u);  // One observation per Global_Read.
  // Bounded staleness: the age bound caps every observation at 3.
  EXPECT_LE(staleness->max(), 3.0);
  // Runtime counters flushed at end of run.
  EXPECT_EQ(reg.counter_value("rt.messages_sent", 0), 12u);
  // messages_received counts blocking recv() completions; updates absorbed
  // by a non-blocking poll() are applied without one, so the count is
  // between 1 and the 12 updates sent.
  EXPECT_GE(reg.counter_value("rt.messages_received", 1), 1u);
  EXPECT_LE(reg.counter_value("rt.messages_received", 1), 12u);
  EXPECT_GT(reg.counter_value("sim.events_executed"), 0u);
  // Gauges settle back to idle by the end of the run.
  EXPECT_DOUBLE_EQ(reg.gauge_value("dsm.blocked_readers"), 0.0);
}

TEST_F(ObsEndToEnd, TraceFileIsValidChromeJson) {
  const std::string json = slurp(trace_path_);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Block spans for Global_Read on the consumer's track (tid 1) and
  // update-delivery instants must both be present.
  EXPECT_NE(json.find("\"name\":\"Global_Read\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dsm.update.deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  // Per-process tracks are named after the simulated tasks.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("producer"), std::string::npos);
  EXPECT_NE(json.find("consumer"), std::string::npos);
}

TEST_F(ObsEndToEnd, MetricsCsvHasTimeSeriesColumns) {
  const std::string csv = slurp(metrics_path_);
  ASSERT_FALSE(csv.empty());
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_NE(header.find("time_ns"), std::string::npos);
  EXPECT_NE(header.find("staleness_mean"), std::string::npos);
  EXPECT_NE(header.find("blocked_readers"), std::string::npos);
  EXPECT_NE(header.find("inflight_updates"), std::string::npos);
  // The run lasts ~240ms virtual at a 10ms interval: expect a healthy
  // number of rows, each with as many fields as the header.
  const auto n_cols =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) +
      1;
  std::size_t n_rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++n_rows;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) +
                  1,
              n_cols)
        << line;
  }
  EXPECT_GE(n_rows, 20u);
}

TEST(ObsOff, RunWithDefaultsProducesNoObservability) {
  nscc::rt::MachineConfig machine;
  machine.ntasks = 2;
  nscc::rt::VirtualMachine vm(machine);
  vm.add_task("a", [](nscc::rt::Task& t) {
    nscc::rt::Packet p;
    p.pack_i32(1);
    t.send(1, 1, std::move(p));
  });
  vm.add_task("b", [](nscc::rt::Task& t) { (void)t.recv(1); });
  vm.run();
  EXPECT_FALSE(vm.obs().active());
  EXPECT_EQ(vm.obs().tracer().size(), 0u);
  EXPECT_EQ(vm.obs().registry().size(), 0u);
  EXPECT_TRUE(vm.obs().sampler().empty());
}

}  // namespace
