// A minimal recursive-descent JSON syntax checker, enough for tests to
// assert the exporters emit well-formed JSON (no third-party parser in the
// image).  Shared by the observability/flow test binaries.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace nscc::test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    i_ = 0;
    return value() && (skip_ws(), i_ == s_.size());
  }

 private:
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == '}') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == ']') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;  // Skip the escaped character.
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // Closing quote.
    return true;
  }

  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' ||
            s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    }
    return true;
  }

  [[nodiscard]] char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
      ++i_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace nscc::test
